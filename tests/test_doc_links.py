"""The docs link-checker: repo links resolve, and the checker itself works.

``scripts/check_doc_links.py`` is stdlib-only and also runs as a CI lint
step; this mirror in tier-1 keeps a broken cross-link from surviving a
local ``pytest -x -q`` even when CI is not watching.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "scripts"))

import check_doc_links  # noqa: E402


def test_repo_markdown_links_resolve():
    assert check_doc_links.main(REPO_ROOT) == 0


def test_checker_scans_the_expected_files():
    names = {p.relative_to(REPO_ROOT).as_posix()
             for p in check_doc_links.markdown_files(REPO_ROOT)}
    assert "README.md" in names
    assert "docs/architecture.md" in names
    assert "docs/trace_store.md" in names


def test_checker_flags_a_broken_link(tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "real.md").write_text("hello\n")
    (tmp_path / "README.md").write_text(
        "[ok](docs/real.md) and [bad](docs/gone.md)\n"
        "```\n[fenced](docs/fake.md)\n```\n"
        "`[inline](docs/fake2.md)` code\n"
        "[anchor](docs/real.md#section) [web](https://example.com)\n")
    problems = check_doc_links.broken_links(tmp_path / "README.md", tmp_path)
    assert problems == ["README.md:1: broken link -> docs/gone.md"]
    assert check_doc_links.main(tmp_path) == 1
