"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.trace.generator import TraceGenerator, TraceGeneratorConfig


@pytest.fixture(scope="session")
def small_trace():
    """A small but realistic two-week trace shared across tests."""
    config = TraceGeneratorConfig(n_vms=250, n_days=14, seed=7, n_subscriptions=40,
                                  servers_per_cluster=3)
    return TraceGenerator(config).generate()


@pytest.fixture(scope="session")
def tiny_trace():
    """A very small one-week trace for the fastest tests."""
    config = TraceGeneratorConfig(n_vms=80, n_days=7, seed=3, n_subscriptions=15,
                                  servers_per_cluster=2)
    return TraceGenerator(config).generate()


@pytest.fixture(scope="session")
def long_running_vm(small_trace):
    """One long-running VM with full utilization history."""
    candidates = [vm for vm in small_trace.long_running(3.0) if vm.has_utilization()]
    assert candidates, "the small trace should contain long-running VMs"
    return candidates[0]
