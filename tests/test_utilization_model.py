"""Tests for the long-term utilization model, history index, and features."""

import numpy as np
import pytest

from repro.core.resources import ALL_RESOURCES, Resource
from repro.prediction.features import FeatureEncoder, HistoryIndex
from repro.prediction.utilization_model import (
    LongTermUtilizationModel,
    NoOversubscriptionModel,
    OracleUtilizationModel,
)
from repro.trace.timeseries import SLOTS_PER_DAY, TimeWindowConfig


@pytest.fixture(scope="module")
def fitted_model(small_trace):
    history, _ = small_trace.split_at(7 * SLOTS_PER_DAY)
    model = LongTermUtilizationModel(n_estimators=5, max_depth=8, random_state=0)
    model.fit(history.long_running().vms)
    return model


@pytest.fixture(scope="module")
def future_vms(small_trace):
    _, future = small_trace.split_at(7 * SLOTS_PER_DAY)
    vms = [vm for vm in future.vms if vm.has_utilization()]
    assert vms
    return vms


class TestHistoryIndex:
    def test_lookup_levels(self, small_trace):
        windows = TimeWindowConfig(4)
        history_vms = small_trace.long_running().vms
        index = HistoryIndex.build(history_vms, windows)
        vm = history_vms[0]
        group, level = index.lookup(vm)
        assert level == 2
        assert group.n_vms >= 1

    def test_global_fallback(self, small_trace):
        windows = TimeWindowConfig(4)
        index = HistoryIndex.build(small_trace.long_running().vms, windows)
        stranger = small_trace.vms[0]
        stranger = type(stranger)(
            vm_id="stranger", subscription_id="unknown-sub", config=stranger.config,
            cluster_id=stranger.cluster_id, start_slot=stranger.start_slot,
            end_slot=stranger.end_slot, utilization=stranger.utilization)
        group, level = index.lookup(stranger)
        assert level == 0
        assert not index.has_history(stranger)

    def test_window_mean_peak_shape(self, small_trace):
        windows = TimeWindowConfig(6)
        index = HistoryIndex.build(small_trace.long_running().vms, windows)
        group = index.global_history
        for resource in ALL_RESOURCES:
            assert group.window_mean_peak[resource].shape == (windows.windows_per_day,)


class TestFeatureEncoder:
    def test_feature_vector_length(self, small_trace):
        windows = TimeWindowConfig(4)
        encoder = FeatureEncoder(windows, Resource.MEMORY)
        index = HistoryIndex.build(small_trace.long_running().vms, windows)
        vm = small_trace.vms[0]
        features = encoder.encode(vm, 0, index)
        assert features.shape == (encoder.n_features,)
        assert len(encoder.feature_names()) == encoder.n_features

    def test_all_windows_matrix(self, small_trace):
        windows = TimeWindowConfig(4)
        encoder = FeatureEncoder(windows, Resource.CPU)
        matrix = encoder.encode_all_windows(small_trace.vms[0], None)
        assert matrix.shape == (windows.windows_per_day, encoder.n_features)
        # Window index column differs across rows.
        window_column = encoder.feature_names().index("window_index")
        assert list(matrix[:, window_column]) == list(range(windows.windows_per_day))


class TestLongTermModel:
    def test_prediction_shapes_and_ranges(self, fitted_model, future_vms):
        prediction = fitted_model.predict(future_vms[0])
        n_windows = fitted_model.windows.windows_per_day
        for resource in ALL_RESOURCES:
            assert prediction.percentile[resource].shape == (n_windows,)
            assert prediction.maximum[resource].shape == (n_windows,)
            assert np.all(prediction.percentile[resource] >= 0)
            assert np.all(prediction.maximum[resource] <= 1)

    def test_maximum_dominates_percentile(self, fitted_model, future_vms):
        for vm in future_vms[:10]:
            prediction = fitted_model.predict(vm)
            for resource in ALL_RESOURCES:
                assert np.all(prediction.maximum[resource] + 1e-9
                              >= prediction.percentile[resource])

    def test_predictions_are_bucketized(self, fitted_model, future_vms):
        prediction = fitted_model.predict(future_vms[0])
        for resource in ALL_RESOURCES:
            for value in prediction.percentile[resource]:
                assert abs(value / 0.05 - round(value / 0.05)) < 1e-6

    def test_reasonable_memory_accuracy(self, fitted_model, future_vms):
        """Predicted memory percentile should be in the neighbourhood of truth."""
        oracle = OracleUtilizationModel(fitted_model.windows, fitted_model.percentile)
        errors = []
        for vm in future_vms:
            if vm.lifetime_days < 1.0:
                continue
            predicted = fitted_model.predict(vm)
            actual = oracle.predict(vm)
            errors.append(np.mean(np.abs(predicted.percentile[Resource.MEMORY]
                                         - actual.percentile[Resource.MEMORY])))
        assert errors, "need long-running future VMs"
        assert float(np.mean(errors)) < 0.30

    def test_training_report_populated(self, fitted_model):
        report = fitted_model.report
        assert report.n_training_vms > 0
        assert report.training_seconds > 0
        assert report.model_size_bytes > 0

    def test_unfitted_model_raises(self, small_trace):
        model = LongTermUtilizationModel(n_estimators=2)
        with pytest.raises(RuntimeError):
            model.predict(small_trace.vms[0])

    def test_empty_training_set_rejected(self):
        model = LongTermUtilizationModel(n_estimators=2)
        with pytest.raises(ValueError):
            model.fit([])


class TestBaselineModels:
    def test_oracle_matches_series_statistics(self, small_trace, long_running_vm):
        windows = TimeWindowConfig(4)
        oracle = OracleUtilizationModel(windows, 95.0)
        prediction = oracle.predict(long_running_vm)
        series = long_running_vm.series(Resource.MEMORY)
        expected = series.lifetime_window_max(windows)
        expected = np.where(np.isnan(expected), series.maximum(), expected)
        np.testing.assert_allclose(prediction.maximum[Resource.MEMORY], expected, atol=1e-9)

    def test_no_oversubscription_model_predicts_full(self, small_trace):
        model = NoOversubscriptionModel(TimeWindowConfig(24))
        prediction = model.predict(small_trace.vms[0])
        assert not prediction.oversubscribable
        for resource in ALL_RESOURCES:
            assert np.all(prediction.percentile[resource] == 1.0)
