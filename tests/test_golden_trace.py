"""Golden-trace regression: pinned PolicyEvaluation numbers.

A small fixed-seed trace is replayed under every standard policy and the
headline outcomes are compared against checked-in expectations.  The point
is to keep replay/scheduler refactors honest: a change that silently shifts
accept or violation rates fails here even if every invariant-style test
still passes.  Integer counts must match exactly; derived floats are pinned
to tight relative tolerances (they are pure arithmetic on the counts and the
trace, so any drift means the replay arithmetic changed).

If a deliberate behaviour change shifts these numbers, regenerate them with
the snippet in the module docstring of the fixture below and update the
table in the same commit that changes the behaviour.
"""

from dataclasses import replace

import pytest

from repro.simulator import SimulationConfig, evaluate_policies
from repro.trace.generator import TraceGenerator, TraceGeneratorConfig
from repro.trace.store import TraceStore

#: policy -> (requested, accepted, rejected, servers_in_use,
#:            avg_concurrent_cores, avg_concurrent_memory_gb,
#:            observed_server_slots, cpu_violation_slots,
#:            memory_violation_slots, additional_capacity_pct)
GOLDEN = {
    "none": (139, 65, 74, 5, 193.95208333333332, 863.9763888888889,
             14400, 21, 0, 0.0),
    "single": (139, 122, 17, 5, 252.83125, 1171.4527777777778,
               14351, 652, 0, 30.357584025263986),
    "coach": (139, 109, 30, 5, 247.81805555555556, 1151.0902777777778,
              14351, 665, 0, 27.77282475983832),
    "aggr-coach": (139, 113, 26, 5, 254.3059027777778, 1177.0416666666667,
                   14351, 472, 0, 31.11790211643055),
}


@pytest.fixture(scope="module")
def golden_trace():
    """The fixed-seed trace behind every golden assertion in this module."""
    config = TraceGeneratorConfig(n_vms=500, n_days=10, seed=1234,
                                  n_subscriptions=30, servers_per_cluster=1)
    return TraceGenerator(config).generate()


@pytest.fixture(scope="module")
def golden_sim_config():
    return SimulationConfig(clusters=["C1", "C2", "C3"], n_estimators=3,
                            parallelism=2)


@pytest.fixture(scope="module")
def golden_results(golden_trace, golden_sim_config):
    """Regenerate the GOLDEN table by printing the result of
    ``evaluate_policies(golden_trace, config=golden_sim_config)`` with the
    fixture configs above, and update the table in the same commit that
    changes the behaviour."""
    return evaluate_policies(golden_trace, config=golden_sim_config)


def test_all_standard_policies_present(golden_results):
    assert set(golden_results) == set(GOLDEN)


@pytest.mark.parametrize("policy", sorted(GOLDEN))
def test_policy_evaluation_matches_golden(golden_results, policy):
    (requested, accepted, rejected, servers_in_use, cores, memory_gb,
     observed, cpu_violations, mem_violations, additional_pct) = GOLDEN[policy]
    evaluation = golden_results[policy]
    assert evaluation.requested_vms == requested
    assert evaluation.accepted_vms == accepted
    assert evaluation.rejected_vms == rejected
    assert evaluation.servers_in_use == servers_in_use
    assert evaluation.average_concurrent_cores == pytest.approx(cores, rel=1e-9)
    assert evaluation.average_concurrent_memory_gb == pytest.approx(memory_gb, rel=1e-9)
    assert evaluation.violations.observed_server_slots == observed
    assert evaluation.violations.cpu_violation_slots == cpu_violations
    assert evaluation.violations.memory_violation_slots == mem_violations
    assert evaluation.additional_capacity_pct == pytest.approx(additional_pct, rel=1e-9)


def test_oversubscription_ordering_holds_on_golden_trace(golden_results):
    """Structural sanity on top of the exact pins: every oversubscription
    policy hosts at least as much as the no-oversubscription baseline."""
    base = golden_results["none"].average_concurrent_cores
    for name in ("single", "coach", "aggr-coach"):
        assert golden_results[name].average_concurrent_cores >= base


@pytest.mark.parametrize("sweep_workers", [2, 3])
def test_process_pool_sweep_matches_golden(golden_trace, golden_sim_config,
                                           golden_results, sweep_workers):
    """The process-pool sweep is bitwise identical to the serial walk on the
    golden trace, for multiple worker counts: same policies in the same
    order, every PolicyEvaluation equal field for field (including the
    per-server violation breakdowns and the relative capacity columns).
    (With the default ``sweep_trace_transport="auto"`` this also exercises
    the shared-memory trace export on a plain object trace.)"""
    sim = replace(golden_sim_config, sweep_parallelism=sweep_workers)
    pooled = evaluate_policies(golden_trace, config=sim)
    assert list(pooled) == list(golden_results)
    for name, evaluation in golden_results.items():
        assert pooled[name] == evaluation, f"policy {name} diverged"


@pytest.fixture(scope="module")
def golden_store_trace(golden_trace):
    """The golden trace columnarized: same VMs, same float64 telemetry bits,
    viewed through the TraceStore fast paths."""
    return TraceStore.from_trace(golden_trace).as_trace()


def test_store_backed_serial_matches_golden(golden_store_trace,
                                            golden_sim_config, golden_results):
    """A TraceStore-backed serial evaluation reproduces the pinned numbers
    bitwise: the columnar filters and zero-copy views are an invisible
    representation change, not a behaviour change."""
    results = evaluate_policies(golden_store_trace, config=golden_sim_config)
    assert list(results) == list(golden_results)
    for name, evaluation in golden_results.items():
        assert results[name] == evaluation, f"policy {name} diverged"


@pytest.mark.parametrize("transport", ["shared", "pickle"])
def test_store_backed_pool_sweep_matches_golden(golden_store_trace,
                                                golden_sim_config,
                                                golden_results, transport):
    """Process-pool sweeps over the store-backed golden trace hit the pins
    for both trace transports: workers reading the parent's shared-memory
    buffers and workers unpickling private copies see the same bits."""
    sim = replace(golden_sim_config, sweep_parallelism=2,
                  sweep_trace_transport=transport)
    pooled = evaluate_policies(golden_store_trace, config=sim)
    assert list(pooled) == list(golden_results)
    for name, evaluation in golden_results.items():
        assert pooled[name] == evaluation, f"policy {name} diverged"
