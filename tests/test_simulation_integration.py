"""Integration tests: cluster-scale simulation, experiments, and overheads."""

import numpy as np
import pytest

from repro.core.policy import (
    COACH_POLICY,
    NO_OVERSUBSCRIPTION_POLICY,
    SINGLE_RATE_POLICY,
)
from repro.experiments import EXPERIMENTS, get_experiment, list_experiments
from repro.experiments.figures import (
    figure17_oversub_accesses,
    figure19_prediction_accuracy,
)
from repro.experiments.overheads import (
    local_predictor_overheads,
    mitigation_bandwidths,
    scheduling_overheads,
    training_overheads,
)
from repro.core.resources import ALL_RESOURCES
from repro.prediction.contention import TwoLevelContentionPredictor
from repro.prediction.utilization_model import NoOversubscriptionModel
from repro.simulator import (
    FailureEvent,
    SimulationConfig,
    evaluate_policies,
    simulate_policy,
)
from repro.simulator.engine import ClusterSimulation
from repro.trace.hardware import ClusterConfig, Fleet
from repro.trace.timeseries import SLOTS_PER_DAY
from repro.trace.timeseries import UtilizationSeries
from repro.trace.trace import Trace
from repro.trace.vm import VM_CATALOG, VMRecord


@pytest.fixture(scope="module")
def sim_config(small_trace):
    cluster = small_trace.cluster_ids()[0]
    return SimulationConfig(clusters=[cluster], n_estimators=3)


class TestClusterSimulation:
    def test_single_policy_run(self, small_trace, sim_config):
        result = simulate_policy(small_trace, NO_OVERSUBSCRIPTION_POLICY, sim_config)
        assert result.requested_vms > 0
        assert 0 <= result.accepted_vms <= result.requested_vms
        assert result.accepted_vms + result.rejected_vms == result.requested_vms
        assert result.average_concurrent_cores >= 0

    def test_oversubscription_hosts_at_least_as_much(self, small_trace, sim_config):
        results = evaluate_policies(
            small_trace,
            {"none": NO_OVERSUBSCRIPTION_POLICY, "coach": COACH_POLICY},
            sim_config)
        assert results["coach"].average_concurrent_cores >= (
            results["none"].average_concurrent_cores - 1e-6)
        assert results["none"].additional_capacity_pct == pytest.approx(0.0)
        assert results["coach"].additional_capacity_pct >= -1e-9

    def test_violation_fractions_bounded(self, small_trace, sim_config):
        result = simulate_policy(small_trace, SINGLE_RATE_POLICY, sim_config)
        assert 0.0 <= result.violations.cpu_violation_fraction <= 1.0
        assert 0.0 <= result.violations.memory_violation_fraction <= 1.0

    def test_none_policy_has_no_memory_violations(self, small_trace, sim_config):
        """Without oversubscription, committed backing equals the request, so
        actual demand can never exceed it."""
        result = simulate_policy(small_trace, NO_OVERSUBSCRIPTION_POLICY, sim_config)
        assert result.violations.memory_violation_fraction == pytest.approx(0.0)


class TestTruncatedSeriesReplay:
    def test_series_shorter_than_lifetime_does_not_crash_violation_replay(self):
        """A VM whose telemetry covers only part of ``[start_slot, end_slot)``
        must not break the contention replay with a broadcast-shape mismatch;
        the uncovered slots simply contribute no demand."""
        fleet = Fleet(clusters=[ClusterConfig("T1", "test", (("gen4-intel", 1),))])
        vm = VMRecord("vm-trunc", "sub-0", VM_CATALOG["D4_v5"], "T1",
                      start_slot=10, end_slot=90)
        # Telemetry stops halfway through the lifetime (40 of 80 slots).
        truncated = UtilizationSeries(np.full(40, 0.5), start_slot=10)
        vm.utilization = {r: truncated for r in ALL_RESOURCES}
        trace = Trace(vms=[vm], fleet=fleet, n_slots=100)

        policy = NO_OVERSUBSCRIPTION_POLICY
        sim = ClusterSimulation(trace, "T1", policy,
                                NoOversubscriptionModel(policy.windows),
                                SimulationConfig(clusters=["T1"]))
        result = sim.run()
        assert "vm-trunc" in result.placed_vms
        # Occupancy still spans the whole lifetime, telemetry or not.
        assert result.violations.observed_server_slots == 80
        assert result.violations.cpu_violation_fraction == pytest.approx(0.0)
        assert result.violations.memory_violation_fraction == pytest.approx(0.0)


class TestFailureInjection:
    """Injected drains/crashes end-to-end through :class:`ClusterSimulation`."""

    @staticmethod
    def _run(trace, cluster_id, config):
        policy = NO_OVERSUBSCRIPTION_POLICY
        sim = ClusterSimulation(trace, cluster_id, policy,
                                NoOversubscriptionModel(policy.windows), config)
        return sim, sim.run()

    def test_drain_empties_server_and_reroutes_residents(self, small_trace):
        cluster_id = small_trace.cluster_ids()[0]
        drain = FailureEvent(slot=10 * SLOTS_PER_DAY, cluster_id=cluster_id,
                             server_index=0, kind="drain")
        config = SimulationConfig(clusters=[cluster_id],
                                  failure_events=(drain,))
        sim, result = self._run(small_trace, cluster_id, config)
        drained_server = f"{cluster_id}-s000"
        assert len(sim.manager.scheduler.servers[drained_server].plans) == 0
        # The drain actually had residents to evacuate on this trace.
        assert sim.evacuated > 0
        assert sim.crashed_vms == 0
        # Surviving placements all sit on still-enabled servers.
        ledger = sim.manager.scheduler.ledger
        for server_id, account in sim.manager.scheduler.servers.items():
            if account.plans:
                row = sim.manager.scheduler.servers[server_id]._row
                assert ledger.row_available[row]

    def test_crash_drops_residents_from_replay(self, small_trace):
        cluster_id = small_trace.cluster_ids()[0]
        crash = FailureEvent(slot=10 * SLOTS_PER_DAY, cluster_id=cluster_id,
                             server_index=0, kind="crash")
        config = SimulationConfig(clusters=[cluster_id],
                                  failure_events=(crash,))
        sim, result = self._run(small_trace, cluster_id, config)
        crashed_server = f"{cluster_id}-s000"
        assert len(sim.manager.scheduler.servers[crashed_server].plans) == 0
        assert sim.crashed_vms > 0
        # Crash victims vanish from the replay set entirely.
        baseline_config = SimulationConfig(clusters=[cluster_id])
        _, baseline = self._run(small_trace, cluster_id, baseline_config)
        assert len(result.placed_vms) == (len(baseline.placed_vms)
                                          - sim.crashed_vms)
        # Lost occupancy shows up as fewer observed server-slots.
        assert (result.violations.observed_server_slots
                < baseline.violations.observed_server_slots)

    def test_empty_failure_list_is_bitwise_baseline(self, small_trace):
        cluster_id = small_trace.cluster_ids()[0]
        _, with_empty = self._run(
            small_trace, cluster_id,
            SimulationConfig(clusters=[cluster_id], failure_events=()))
        _, baseline = self._run(
            small_trace, cluster_id, SimulationConfig(clusters=[cluster_id]))
        assert set(with_empty.placed_vms) == set(baseline.placed_vms)
        assert with_empty.violations == baseline.violations

    def test_failures_leave_no_negative_ledger_residue(self, small_trace):
        cluster_id = small_trace.cluster_ids()[0]
        events = (
            FailureEvent(8 * SLOTS_PER_DAY, cluster_id, 0, "drain"),
            FailureEvent(9 * SLOTS_PER_DAY, cluster_id, 1, "crash"),
            FailureEvent(11 * SLOTS_PER_DAY, cluster_id, 2, "drain"),
        )
        config = SimulationConfig(clusters=[cluster_id], failure_events=events)
        sim, _ = self._run(small_trace, cluster_id, config)
        ledger = sim.manager.scheduler.ledger
        assert float(ledger.demand.min(initial=0.0)) >= 0.0
        assert float(ledger.pa_memory.min(initial=0.0)) >= 0.0
        assert float(ledger.va_demand.min(initial=0.0)) >= 0.0

    def test_failure_run_is_deterministic(self, small_trace):
        cluster_id = small_trace.cluster_ids()[0]
        events = (FailureEvent(8 * SLOTS_PER_DAY, cluster_id, 0, "drain"),
                  FailureEvent(8 * SLOTS_PER_DAY, cluster_id, 1, "crash"))
        config = SimulationConfig(clusters=[cluster_id], failure_events=events)
        sim_a, run_a = self._run(small_trace, cluster_id, config)
        sim_b, run_b = self._run(small_trace, cluster_id, config)
        assert set(run_a.placed_vms) == set(run_b.placed_vms)
        assert run_a.violations == run_b.violations
        assert (sim_a.evacuated, sim_a.crashed_vms, sim_a.preempted) == \
            (sim_b.evacuated, sim_b.crashed_vms, sim_b.preempted)

    def test_unknown_failure_kind_rejected(self):
        with pytest.raises(ValueError):
            FailureEvent(slot=0, cluster_id="C", server_index=0, kind="flood")


class TestClassAwareAdmission:
    def test_on_demand_only_trace_matches_class_blind_run(self, small_trace):
        """With every VM on-demand (the generator default), the class-aware
        path must reproduce the classic decisions bitwise: no spot exists to
        preempt, so the extra machinery is a strict no-op."""
        config = SimulationConfig(clusters=list(small_trace.cluster_ids()),
                                  class_aware_admission=True, n_estimators=3)
        blind_config = SimulationConfig(
            clusters=list(small_trace.cluster_ids()), n_estimators=3)
        aware = simulate_policy(small_trace, NO_OVERSUBSCRIPTION_POLICY, config)
        blind = simulate_policy(small_trace, NO_OVERSUBSCRIPTION_POLICY,
                                blind_config)
        assert aware.accepted_vms == blind.accepted_vms
        assert aware.rejected_vms == blind.rejected_vms
        assert aware.violations == blind.violations


class TestExperimentsRegistry:
    def test_all_expected_experiments_registered(self):
        expected = {f"figure{i:02d}" for i in (2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12,
                                               15, 17, 18, 19, 20, 21)}
        expected.add("section4.5")
        assert expected == set(list_experiments())

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            get_experiment("figure99")

    def test_trace_free_experiments_run(self):
        assert EXPERIMENTS["figure15"].run()
        assert EXPERIMENTS["figure18"].run()

    def test_characterization_experiments_run_on_fixture(self, small_trace):
        for experiment_id in ("figure02", "figure03", "figure06", "figure08",
                              "figure10", "figure11", "figure12"):
            assert EXPERIMENTS[experiment_id].run(small_trace)


class TestFigure17:
    def test_higher_percentile_reduces_oversub_accesses(self, small_trace):
        result = figure17_oversub_accesses(small_trace, percentiles=(75, 95),
                                           window_hours_sweep=(4,))
        table = result["mean_oversub_access_pct"][4]
        assert table[95] <= table[75] + 1e-9

    def test_oversub_accesses_below_worst_case(self, small_trace):
        result = figure17_oversub_accesses(small_trace, percentiles=(80,),
                                           window_hours_sweep=(4,))
        assert result["mean_oversub_access_pct"][4][80] <= result["worst_case_pct"][80.0]

    def test_cdf_present_for_4hr(self, small_trace):
        result = figure17_oversub_accesses(small_trace, percentiles=(90,),
                                           window_hours_sweep=(4,))
        assert 90 in result["cdf_4hr_pct"]
        assert result["cdf_4hr_pct"][90] == sorted(result["cdf_4hr_pct"][90])


class TestFigure19:
    def test_prediction_accuracy_structure(self, small_trace):
        rows = figure19_prediction_accuracy(small_trace, percentiles=(95.0, 85.0),
                                            n_estimators=3, max_eval_vms=40)
        assert len(rows) == 4  # 2 percentiles x 2 resources
        for row in rows:
            assert 0.0 <= row.under_allocation_pct <= 100.0
            assert row.over_allocation_error_pct >= 0.0

    def test_lower_percentile_reduces_over_allocation(self, small_trace):
        rows = figure19_prediction_accuracy(small_trace, percentiles=(95.0, 85.0),
                                            n_estimators=3, max_eval_vms=40)
        by_key = {(r.resource, r.percentile): r for r in rows}
        assert (by_key[("memory", 85.0)].over_allocation_error_pct
                <= by_key[("memory", 95.0)].over_allocation_error_pct + 15.0)


class TestOverheads:
    def test_training_overheads(self, tiny_trace):
        report = training_overheads(tiny_trace, n_estimators=3)
        assert report["n_training_vms"] > 0
        assert report["training_seconds"] > 0
        assert report["model_size_mb"] > 0

    def test_scheduling_overhead_small(self, tiny_trace):
        report = scheduling_overheads(tiny_trace, cluster_id=tiny_trace.cluster_ids()[0],
                                      max_vms=30)
        assert report["coach_ms_per_vm"] < 100.0
        assert "added_ms_per_vm" in report

    def test_local_predictor_footprint(self):
        report = local_predictor_overheads(samples=120)
        assert report["model_memory_kb"] < 64.0
        assert report["train_infer_cycle_ms"] > 0

    def test_mitigation_bandwidths_match_paper(self):
        bandwidths = mitigation_bandwidths()
        assert bandwidths["trim_bandwidth_gbps"] == pytest.approx(1.1)
        assert bandwidths["extend_bandwidth_gbps"] == pytest.approx(15.7)


class TestContentionPredictor:
    def test_two_level_forecast(self):
        predictor = TwoLevelContentionPredictor(samples_per_window=5, warmup_windows=2)
        rng = np.random.default_rng(0)
        for i in range(60):
            predictor.observe(float(np.clip(0.4 + 0.2 * np.sin(i / 5)
                                            + rng.normal(0, 0.01), 0, 1)))
        forecast = predictor.forecast()
        assert 0.0 <= forecast.short_term <= 1.0
        assert predictor.lstm_ready
        assert forecast.long_term is not None
        assert 0.0 <= forecast.long_term <= 1.0

    def test_exceeds_threshold(self):
        predictor = TwoLevelContentionPredictor(samples_per_window=5, warmup_windows=100)
        for _ in range(10):
            predictor.observe(0.95)
        assert predictor.forecast().exceeds(0.9)
        assert not predictor.forecast().exceeds(0.99)

    def test_ewma_error_evaluation(self):
        series = np.clip(0.5 + np.random.default_rng(1).normal(0, 0.02, 200), 0, 1)
        error = TwoLevelContentionPredictor.evaluate_ewma_error(series)
        assert error < 0.05
