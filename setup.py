"""Thin setup.py kept so that editable installs work in offline environments
that lack the ``wheel`` package required for PEP 660 editable builds."""
from setuptools import setup

setup()
