"""Repo-wide pytest configuration.

Reseeds the *global* random state before every test so any code path that
falls back to ``np.random``/``random`` module-level generators behaves
identically run to run and regardless of test ordering or ``-m`` selection.
Code under test that wants randomness should still take an explicit
``np.random.default_rng(seed)``; this fixture is the safety net that keeps
tier-1 tests and benchmarks deterministic either way.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

GLOBAL_TEST_SEED = 727


@pytest.fixture(autouse=True)
def _reseed_global_rngs():
    random.seed(GLOBAL_TEST_SEED)
    np.random.seed(GLOBAL_TEST_SEED)
    yield
