"""Figure 15: PA/VA slowdown and allocation trade-off."""
from conftest import run_once
from repro.experiments.figures import figure15_pa_va_tradeoff


def test_fig15_pa_va_tradeoff(benchmark):
    rows = run_once(benchmark, figure15_pa_va_tradeoff, step_gb=4.0)
    points = {(pa, va): (s, a) for pa, va, s, a in zip(
        rows["pa_gb"], rows["va_gb"], rows["slowdown"], rows["allocated_gb"])}
    print(f"\nFigure 15: (32PA,0VA) slowdown {points[(32.0,0.0)][0]:.2f} alloc "
          f"{points[(32.0,0.0)][1]:.0f}GB; (16PA,16VA) slowdown {points[(16.0,16.0)][0]:.2f} "
          f"alloc {points[(16.0,16.0)][1]:.0f}GB; (8PA,0VA) slowdown {points[(8.0,0.0)][0]:.1f}")
    assert points[(32.0, 0.0)][0] == 1.0
    assert points[(16.0, 16.0)][1] < 32.0
