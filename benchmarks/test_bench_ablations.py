"""Ablation benches for the design choices called out in DESIGN.md."""
from conftest import run_once
from repro.core.resources import ALL_RESOURCES
from repro.core.windows import (
    multiplexed_oversubscribed_memory,
    plan_vm,
    unmultiplexed_oversubscribed_memory,
)
from repro.prediction.utilization_model import OracleUtilizationModel
from repro.trace.timeseries import TimeWindowConfig


def _va_multiplexing_savings(trace, window_hours):
    """How much Eq. 4 multiplexing saves over summing per-VM VA peaks."""
    windows = TimeWindowConfig(window_hours)
    oracle = OracleUtilizationModel(windows, 95.0)
    vms = [vm for vm in trace.long_running() if vm.has_utilization()][:150]
    plans = []
    for vm in vms:
        allocation = {r: vm.allocated(r) for r in ALL_RESOURCES}
        plans.append(plan_vm(vm.vm_id, allocation, oracle.predict(vm), True))
    multiplexed = multiplexed_oversubscribed_memory(plans)
    naive = unmultiplexed_oversubscribed_memory(plans)
    return multiplexed, naive


def test_ablation_va_multiplexing(benchmark, bench_trace):
    multiplexed, naive = run_once(benchmark, _va_multiplexing_savings, bench_trace, 4)
    saved = 100.0 * (1.0 - multiplexed / max(naive, 1e-9))
    print(f"\nAblation: Eq.4 multiplexing backs {multiplexed:.0f}GB vs naive {naive:.0f}GB "
          f"({saved:.0f}% less)")
    assert multiplexed <= naive + 1e-6


def test_ablation_window_length(benchmark, bench_trace):
    def sweep():
        return {h: _va_multiplexing_savings(bench_trace, h)[0] for h in (24, 4, 1)}
    result = run_once(benchmark, sweep)
    print("\nAblation: VA backing by window length:",
          {h: round(v, 1) for h, v in result.items()})
    assert result[1] <= result[24] + 1e-6
