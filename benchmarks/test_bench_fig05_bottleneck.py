"""Figure 5: bottleneck resource per cluster."""
from conftest import run_once
from repro.experiments.figures import figure05_bottlenecks


def test_fig05_bottlenecks(benchmark, bench_trace):
    rows = run_once(benchmark, figure05_bottlenecks, bench_trace)
    base = rows["no-oversub"]
    print("\nFigure 5 (no oversub) bottleneck % per cluster:")
    for cluster in ("C1", "C2", "C4"):
        print(f"  {cluster}: " + " ".join(f"{k}={v:.0f}" for k, v in base[cluster].items()))
    assert base["C1"]["cpu"] >= base["C4"]["cpu"]
    assert base["C4"]["memory"] >= base["C1"]["memory"]
