"""Section 4.4: EWMA and LSTM contention-prediction error."""
import numpy as np
from conftest import run_once
from repro.core.resources import Resource
from repro.prediction.contention import TwoLevelContentionPredictor


def _errors(trace):
    ewma_errors, lstm_errors = [], []
    vms = [vm for vm in trace.long_running(3.0) if vm.has_utilization()][:20]
    for vm in vms:
        series = vm.series(Resource.MEMORY).values
        ewma_errors.append(TwoLevelContentionPredictor.evaluate_ewma_error(series))
        lstm_errors.append(TwoLevelContentionPredictor.evaluate_lstm_error(series[:400]))
    return float(np.mean(ewma_errors)), float(np.mean(lstm_errors))


def test_sec44_predictor_errors(benchmark, bench_trace):
    ewma, lstm = run_once(benchmark, _errors, bench_trace)
    print(f"\nSection 4.4: EWMA mean error {100*ewma:.1f}% (paper <4%), "
          f"LSTM mean error {100*lstm:.1f}% (paper ~2%)")
    assert ewma < 0.15
    assert lstm < 0.20
