"""Characterization-throughput benchmark: columnar kernels vs per-VM loops.

The claim: the Section-2 statistic suite (Figures 2-12) over a store-backed
multiweek trace runs >= 5x faster through the segment-reduce kernels than
through the seed per-VM ``UtilizationSeries`` loops, while every statistic
stays bitwise identical (the harness hard-asserts equality before the ratio
is even considered).

Workload and measurement harness are shared with
``scripts/run_benchmarks.py`` via :mod:`repro.simulator.synthetic` and
:mod:`repro.simulator.benchmarking`, so the tracked numbers cannot drift
from this benchmark.
"""

from conftest import assert_perf, bench_smoke_enabled, run_once

from repro.simulator.benchmarking import measure_characterization_throughput
from repro.simulator.synthetic import generate_sweep_bench_trace


def test_bench_characterization_columnar(benchmark):
    """Columnar characterization is >= 5x the per-VM reference, bitwise-equal."""
    trace = generate_sweep_bench_trace(smoke=bench_smoke_enabled(), columnar=True)
    outcome = run_once(benchmark, measure_characterization_throughput, trace)
    print(f"\ncharacterization: columnar {outcome['columnar_seconds'] * 1e3:.0f} ms"
          f" vs reference {outcome['reference_seconds'] * 1e3:.0f} ms"
          f" ({outcome['speedup']:.1f}x) on {outcome['n_vms']} VMs /"
          f" {outcome['n_slots']} slots")
    # The harness hard-asserts bitwise equality; restate the structural
    # claim so a harness regression cannot silently weaken the benchmark.
    assert outcome["bitwise_identical"]
    # Wall-clock ratio is machine-dependent: relaxed under smoke.
    assert_perf(outcome["speedup"] >= 5.0,
                "columnar characterization should be >= 5x the per-VM "
                f"reference, got {outcome['speedup']:.1f}x")
