"""Figure 6: CPU/memory utilization correlation."""
from conftest import run_once
from repro.experiments.figures import figure06_utilization


def test_fig06_utilization_correlation(benchmark, bench_trace):
    rows = run_once(benchmark, figure06_utilization, bench_trace)
    summary = rows["summary"]
    print("\nFigure 6 summary: "
          f"CPU mean<50%: {100*summary['fraction_cpu_mean_below_50']:.0f}%  "
          f"median CPU range {100*summary['median_cpu_range']:.0f}%  "
          f"median MEM range {100*summary['median_memory_range']:.0f}%")
    assert summary["median_memory_range"] < summary["median_cpu_range"]
