"""Section 4.5: platform overheads (training, scheduling, predictors, mitigation)."""
from conftest import run_once
from repro.experiments.overheads import overhead_report


def test_sec45_overheads(benchmark, bench_trace):
    report = run_once(benchmark, overhead_report, bench_trace, n_estimators=6)
    training = report["training"]
    scheduling = report["scheduling"]
    print(f"\nSection 4.5: training {training['training_seconds']:.1f}s on "
          f"{training['n_training_vms']:.0f} VMs, model {training['model_size_mb']:.1f}MB, "
          f"scheduling +{scheduling['added_ms_per_vm']:.2f}ms/VM, "
          f"LSTM {report['local_predictor']['model_memory_kb']:.0f}KB, "
          f"trim {report['mitigation']['trim_bandwidth_gbps']}GB/s / "
          f"extend {report['mitigation']['extend_bandwidth_gbps']}GB/s")
    assert training["training_seconds"] > 0
    assert report["local_predictor"]["model_memory_kb"] < 64
