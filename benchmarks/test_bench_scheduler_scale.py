"""Placement throughput of the vectorized scheduler at production scale.

Packs >=5000 VM plans onto a 200-server cluster with the matrix-form
:class:`ClusterScheduler` and compares plans/second against the seed
per-server loop (:class:`ReferenceLoopScheduler`).  The reference is timed on
a prefix of the same arrival sequence -- its per-plan cost is dominated by
the full server scan, so a prefix is representative -- to keep the suite's
wall-clock time bounded.
"""

import time

import numpy as np
from conftest import run_once

from repro.core.resources import ALL_RESOURCES, Resource
from repro.core.scheduler import ClusterScheduler, ReferenceLoopScheduler
from repro.core.windows import plan_vm
from repro.prediction.utilization_model import WindowUtilizationPrediction
from repro.trace.hardware import ClusterConfig
from repro.trace.timeseries import TimeWindowConfig

N_PLANS = 5000
REFERENCE_PLANS = 300
WINDOWS = TimeWindowConfig(4)

SCALE_CLUSTER = ClusterConfig(
    "SCALE", "bench",
    (("gen4-intel", 60), ("gen5-intel", 50), ("gen6-amd", 50), ("gen7-amd", 40)))


def _build_plans(n, seed=7):
    rng = np.random.default_rng(seed)
    w = WINDOWS.windows_per_day
    plans = []
    for i in range(n):
        maximum = {r: rng.uniform(0.1, 0.9, w) for r in ALL_RESOURCES}
        percentile = {r: np.minimum(maximum[r], rng.uniform(0.05, 0.7, w))
                      for r in ALL_RESOURCES}
        prediction = WindowUtilizationPrediction(
            windows=WINDOWS, percentile=percentile, maximum=maximum)
        cores = float(rng.choice([1, 2, 2, 4, 4, 8]))
        allocation = {Resource.CPU: cores, Resource.MEMORY: cores * 4.0,
                      Resource.NETWORK: min(0.5 * cores, 16.0),
                      Resource.SSD: 32.0 * cores}
        plans.append(plan_vm(f"vm-{i}", allocation, prediction, oversubscribe=True))
    return plans


def _place_all(plans):
    scheduler = ClusterScheduler(SCALE_CLUSTER, WINDOWS)
    start = time.perf_counter()
    for plan in plans:
        scheduler.place(plan)
    elapsed = time.perf_counter() - start
    return scheduler, elapsed


def test_vectorized_scheduler_scale_throughput(benchmark):
    plans = _build_plans(N_PLANS)
    assert SCALE_CLUSTER.server_count >= 200

    scheduler, vectorized_seconds = run_once(benchmark, _place_all, plans)
    vectorized_rate = N_PLANS / vectorized_seconds

    reference = ReferenceLoopScheduler(SCALE_CLUSTER, WINDOWS)
    start = time.perf_counter()
    for plan in plans[:REFERENCE_PLANS]:
        reference.place(plan)
    reference_rate = REFERENCE_PLANS / (time.perf_counter() - start)

    speedup = vectorized_rate / reference_rate
    print(f"\nScheduler scale ({SCALE_CLUSTER.server_count} servers, {N_PLANS} plans):")
    print(f"  vectorized {vectorized_rate:8.0f} plans/s "
          f"({scheduler.accepted_count()} accepted, {scheduler.rejected_count()} rejected)")
    print(f"  seed loop  {reference_rate:8.0f} plans/s (prefix of {REFERENCE_PLANS})")
    print(f"  speedup    {speedup:8.1f}x")

    # The workload must genuinely fill the cluster, not bounce off a wall.
    assert scheduler.accepted_count() >= 1000
    assert speedup >= 5.0
