"""Placement throughput of the vectorized scheduler at production scale.

Two measurements:

* the single-size benchmark packs >=5000 VM plans onto a 200-server
  cluster with the matrix-form :class:`ClusterScheduler` and compares
  plans/second against the seed per-server loop
  (:class:`ReferenceLoopScheduler`);
* the scaling curve (PR 7, extended to 100k servers in PR 9) sweeps fleet
  sizes and compares the incremental batched scheduler (tiered candidate
  index + provable-run scatter commits) against the dense PR 6 baseline
  (``incremental=False`` + sequential ``place``), asserting >=25x at the
  largest size -- the regime the tiered index exists for.

References are timed on a prefix of the same arrival sequence -- their
per-plan cost is dominated by the full server scan, which is independent
of cluster fill, so a prefix is representative -- to keep the suite's
wall-clock time bounded.
"""

import time

from conftest import assert_perf, bench_smoke_enabled, run_once

from repro.core.scheduler import ClusterScheduler, ReferenceLoopScheduler
from repro.simulator.benchmarking import measure_scheduler_scaling
from repro.simulator.synthetic import (
    BENCH_WINDOWS as WINDOWS,
    SCALE_BENCH_CLUSTER as SCALE_CLUSTER,
    build_placement_bench_plans,
)

REFERENCE_PLANS = 300


def _place_all(plans):
    scheduler = ClusterScheduler(SCALE_CLUSTER, WINDOWS)
    start = time.perf_counter()
    for plan in plans:
        scheduler.place(plan)
    elapsed = time.perf_counter() - start
    return scheduler, elapsed


def test_vectorized_scheduler_scale_throughput(benchmark):
    # The smoke knob shrinks the workload the same way for this benchmark
    # and scripts/run_benchmarks.py, so the two stay comparable per CI run.
    plans = build_placement_bench_plans(smoke=bench_smoke_enabled())
    n_plans = len(plans)
    assert SCALE_CLUSTER.server_count >= 200

    scheduler, vectorized_seconds = run_once(benchmark, _place_all, plans)
    vectorized_rate = n_plans / vectorized_seconds

    reference = ReferenceLoopScheduler(SCALE_CLUSTER, WINDOWS)
    start = time.perf_counter()
    for plan in plans[:REFERENCE_PLANS]:
        reference.place(plan)
    reference_rate = REFERENCE_PLANS / (time.perf_counter() - start)

    speedup = vectorized_rate / reference_rate
    print(f"\nScheduler scale ({SCALE_CLUSTER.server_count} servers, {n_plans} plans):")
    print(f"  vectorized {vectorized_rate:8.0f} plans/s "
          f"({scheduler.accepted_count()} accepted, {scheduler.rejected_count()} rejected)")
    print(f"  seed loop  {reference_rate:8.0f} plans/s (prefix of {REFERENCE_PLANS})")
    print(f"  speedup    {speedup:8.1f}x")

    # The workload must genuinely fill the cluster, not bounce off a wall.
    assert scheduler.accepted_count() >= 1000
    assert_perf(speedup >= 5.0,
                f"expected >=5x placement speedup over the seed loop, "
                f"got {speedup:.1f}x")


def test_scheduler_scaling_curve(benchmark):
    smoke = bench_smoke_enabled()
    result = run_once(benchmark, measure_scheduler_scaling, smoke=smoke)

    print("\nScheduler scaling curve (incremental place_batch vs dense PR 6):")
    for point in result["curve"]:
        extrapolated = (" (extrapolated from "
                        f"{point['dense_prefix_plans']}-plan prefix)"
                        if point["dense_extrapolated"] else "")
        print(f"  {point['n_servers']:6d} servers: "
              f"incremental {point['incremental_plans_per_s']:8.0f} plans/s, "
              f"dense {point['dense_plans_per_s']:8.0f} plans/s{extrapolated}, "
              f"speedup {point['speedup']:6.2f}x "
              f"({point['accepted']} accepted, {point['rejected']} rejected, "
              f"peak RSS {point['ru_maxrss_kb']} kB)")

    # The harness already asserted decision equality on every prefix; the
    # perf gate is the acceptance criterion: >=25x at the largest size --
    # the 100k-server regime the tiered candidate index exists for.
    assert all(point["decisions_identical"] for point in result["curve"])
    assert_perf(result["largest_speedup"] >= 25.0,
                f"expected >=25x incremental speedup at "
                f"{result['largest_size']} servers, "
                f"got {result['largest_speedup']:.1f}x")
