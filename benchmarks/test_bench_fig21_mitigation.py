"""Figure 21: mitigation policies during memory contention."""
from conftest import run_once
from repro.experiments.figures import figure21_mitigation


def test_fig21_mitigation_policies(benchmark):
    rows = run_once(benchmark, figure21_mitigation)
    print("\nFigure 21 peak slowdowns and recovery:")
    for name, row in rows.items():
        print(f"  {name:18s} cache x{row['peak_cache_slowdown']:.2f} "
              f"kv x{row['peak_kvstore_slowdown']:.2f} recovered={row['recovered']}")
    assert not rows["none"]["recovered"]
    assert rows["extend-proactive"]["recovered"]
