"""Figure 20: additional capacity and violations per oversubscription policy."""
from conftest import run_once
from repro.experiments.figures import figure20_packing


def test_fig20_packing_and_violations(benchmark, packing_trace):
    rows = run_once(benchmark, figure20_packing, packing_trace,
                    clusters=("C1", "C4", "C8"), n_estimators=4, parallelism=3)
    print("\nFigure 20 (paper: Single +22%, Coach +38%, Aggr +47%; violations few %):")
    for name in ("none", "single", "coach", "aggr-coach"):
        row = rows[name]
        print(f"  {name:10s} capacity +{row['additional_capacity_pct']:.1f}% "
              f"cpuV {row['cpu_violation_pct']:.1f}% memV {row['memory_violation_pct']:.1f}%")
    assert rows["single"]["additional_capacity_pct"] > 0
    assert rows["coach"]["additional_capacity_pct"] >= rows["single"]["additional_capacity_pct"] - 5.0
