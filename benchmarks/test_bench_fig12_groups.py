"""Figure 12: history-based predictability by grouping."""
from conftest import run_once
from repro.experiments.figures import figure12_predictability


def test_fig12_predictability(benchmark, bench_trace):
    rows = run_once(benchmark, figure12_predictability, bench_trace)
    print("\nFigure 12 (memory):")
    for grouping, stats in rows["summary_memory"].items():
        print(f"  {grouping:28s} matches={stats['median_matching_vms']:.0f} "
              f"range={stats['median_peak_range_pct']:.0f}% "
              f"within10%={100*stats['fraction_within_tolerance']:.0f}%")
    combined = rows["summary_memory"]["subscription+configuration"]
    assert combined["median_peak_range_pct"] <= rows["summary_memory"]["configuration"]["median_peak_range_pct"] + 1e-9
