"""Figure 19: long-term prediction over/under-allocation."""
from conftest import run_once
from repro.experiments.figures import figure19_prediction_accuracy


def test_fig19_prediction_accuracy(benchmark, bench_trace):
    rows = run_once(benchmark, figure19_prediction_accuracy, bench_trace,
                    percentiles=(95.0, 90.0, 85.0), n_estimators=5, max_eval_vms=80)
    print("\nFigure 19 (paper: over-alloc 23-30% CPU / 19-24% MEM; under-alloc 3-8% / 1-2%):")
    for row in rows:
        print(f"  {row.resource:6s} P{row.percentile:.0f}: over={row.over_allocation_error_pct:.1f}% "
              f"under={row.under_allocation_pct:.1f}%")
    assert rows
