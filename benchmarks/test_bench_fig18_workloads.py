"""Figure 18: workload slowdown under GPVM / CVM / CVM-Floor / OVM."""
from conftest import run_once
from repro.experiments.figures import figure18_workloads


def test_fig18_workload_slowdowns(benchmark):
    table = run_once(benchmark, figure18_workloads)
    print("\nFigure 18 normalised slowdowns:")
    for name, row in table.items():
        print(f"  {name:14s} cvm={row['cvm']:.2f} floor={row['cvm-floor']:.2f} ovm={row['ovm']:.2f}")
    assert all(row["cvm"] <= 1.25 for row in table.values())
    assert table["kvstore"]["ovm"] > 2.0
