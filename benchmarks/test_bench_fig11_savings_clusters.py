"""Figure 11: savings distribution across clusters and window lengths."""
from conftest import run_once
from repro.experiments.figures import figure11_savings_distribution


def test_fig11_savings_distribution(benchmark, bench_trace):
    rows = run_once(benchmark, figure11_savings_distribution, bench_trace)
    print("\nFigure 11 median savings % (cpu/memory):")
    for label in ("1x24hr", "6x4hr", "24x1hr", "ideal"):
        print(f"  {label:7s} cpu={rows[label]['cpu']['median']:.1f} "
              f"mem={rows[label]['memory']['median']:.1f}")
    assert rows["6x4hr"]["cpu"]["median"] >= rows["1x24hr"]["cpu"]["median"]
