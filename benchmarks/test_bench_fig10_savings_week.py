"""Figure 10: potential weekly savings for one cluster."""
from conftest import run_once
from repro.experiments.figures import figure10_weekly_savings


def test_fig10_weekly_savings(benchmark, bench_trace):
    rows = run_once(benchmark, figure10_weekly_savings, bench_trace, cluster_id="C1")
    import numpy as np
    cpu_4h = float(np.mean(rows["6x4hr"]["cpu"]))
    mem_4h = float(np.mean(rows["6x4hr"]["memory"]))
    print(f"\nFigure 10 (C1, 6x4hr): CPU saved {cpu_4h:.1f}% MEM saved {mem_4h:.1f}% "
          "(paper: ~20% / ~15%)")
    assert cpu_4h > 0
