"""Shared fixtures for the benchmark harnesses.

Each benchmark regenerates one paper figure/table.  Benchmarks run each
harness once (``benchmark.pedantic`` with a single round) because the point
is to produce the figure's data and record how long regeneration takes, not
to micro-benchmark hot loops.
"""

from __future__ import annotations

import warnings
from pathlib import Path

import pytest

# Re-exported for the benchmark modules: the knob parser lives beside the
# shared measurement harnesses so scripts/run_benchmarks.py reads it
# identically.  Shared CI runners cannot guarantee speedup ratios (noisy
# neighbours, 1-2 vCPUs), so the smoke run keeps exercising every benchmark
# code path and printing the observed numbers but only *warns* when a ratio
# misses its local threshold.
from repro.simulator.benchmarking import bench_smoke_enabled  # noqa: F401
from repro.trace.generator import TraceGenerator, TraceGeneratorConfig
from repro.trace.store import TraceStore

_BENCH_DIR = Path(__file__).resolve().parent


class BenchSmokeWarning(UserWarning):
    """A perf threshold was relaxed instead of enforced (smoke mode)."""


def assert_perf(condition: bool, message: str, *, relax: bool = False) -> None:
    """Performance assertion, downgraded to :class:`BenchSmokeWarning` under
    ``REPRO_BENCH_SMOKE=1`` (or when *relax* says the machine cannot
    demonstrate the ratio, e.g. a parallel speedup on a single-CPU box).
    Correctness assertions must stay plain ``assert`` -- only ratios and
    wall-clock thresholds belong here.
    """
    if condition:
        return
    if bench_smoke_enabled() or relax:
        warnings.warn(f"relaxed perf threshold: {message}", BenchSmokeWarning,
                      stacklevel=2)
        return
    raise AssertionError(message)


def pytest_collection_modifyitems(items):
    """Mark everything collected under benchmarks/ with ``bench`` so the
    tier-1 suite can deselect it wholesale (``-m "not bench"``)."""
    for item in items:
        try:
            path = Path(str(item.fspath)).resolve()
        except OSError:
            continue
        if _BENCH_DIR in path.parents:
            item.add_marker(pytest.mark.bench)


@pytest.fixture(scope="session")
def bench_trace():
    """The trace used by the characterization and evaluation benchmarks.

    Store-backed since PR 5: the figure harnesses time the columnar
    characterization dispatch, which is the path a production caller gets.
    Every figure's numbers are bitwise identical to the object-backed trace
    (the columnar exactness contract), so only the timings move.
    """
    config = TraceGeneratorConfig(n_vms=800, n_days=14, seed=2024,
                                  n_subscriptions=60, servers_per_cluster=3)
    return TraceStore.from_trace(TraceGenerator(config).generate()).as_trace()


@pytest.fixture(scope="session")
def packing_trace():
    """A higher-pressure trace for the packing/capacity benchmark (Figure 20)."""
    config = TraceGeneratorConfig(n_vms=1200, n_days=14, seed=11,
                                  n_subscriptions=80, servers_per_cluster=3)
    return TraceGenerator(config).generate()


def run_once(benchmark, func, *args, **kwargs):
    """Run a harness exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
