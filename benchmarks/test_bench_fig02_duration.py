"""Figure 2: resource hours and VM share by VM duration."""
from conftest import run_once
from repro.experiments.figures import figure02_duration


def test_fig02_resource_hours_by_duration(benchmark, bench_trace):
    rows = run_once(benchmark, figure02_duration, bench_trace)
    one_day = rows["threshold_hours"].index(24)
    print("\nFigure 2 @ >1 day: "
          f"CPU-hours {rows['cpu_hours_pct'][one_day]:.1f}% "
          f"MEM-hours {rows['memory_hours_pct'][one_day]:.1f}% "
          f"VMs {rows['vms_pct'][one_day]:.1f}%  (paper: ~96% / ~96% / ~28%)")
    assert rows["cpu_hours_pct"][one_day] > 80.0
