"""Sweep orchestration at production scale (process pool + chunked replay).

Two demonstrations back the PR-3 sweep subsystem:

1. **Process-pool sweep speedup.**  The full standard-policy suite is swept
   over a multi-week trace serially and twice on one long-lived worker
   pool (``SimulationConfig.sweep_parallelism`` workers): once cold
   (spawn + numpy imports on top of compute) and once warm (compute
   only).  The results must be bitwise identical (hard assert); the
   tracked speedup is serial vs *warm* -- spawn is a fixed per-pool cost
   that repeat sweepers amortize away -- and the ratio is enforced only
   on machines that can physically demonstrate it (>= ``MIN_SWEEP_CPUS``
   cores), relaxed to a warning under ``REPRO_BENCH_SMOKE=1``.

2. **Bounded-memory chunked replay.**  A multi-week replay state whose
   dense ``(n_servers, n_slots)`` matrix is >= 10x the chunk budget is
   replayed in dense and chunked modes; the ViolationStats must be
   identical (hard assert) while the chunked peak traced memory stays a
   multiple below the dense peak (the whole point of the streaming mode).
"""

import os

from conftest import assert_perf, bench_smoke_enabled, run_once

from repro.simulator.benchmarking import (
    measure_replay_memory,
    measure_sweep_serial_vs_pool,
)
from repro.simulator.synthetic import (
    BENCH_CHUNK_SLOTS as CHUNK_SLOTS,
    build_chunked_bench_state,
    generate_sweep_bench_trace,
)

#: Cores needed before a 4-policy pool speedup is physically demonstrable.
MIN_SWEEP_CPUS = 4


def test_process_pool_sweep_speedup(benchmark):
    smoke = bench_smoke_enabled()
    trace = generate_sweep_bench_trace(smoke=smoke)
    # The harness times serial, then the same pool twice (cold: spawn +
    # imports + compute; warm: compute only), raising if either pool merge
    # is not bitwise identical to the serial walk -- the differential
    # check at scale.  It always uses >= 2 workers, so the
    # ProcessPoolExecutor path is exercised even on single-CPU machines.
    outcome = run_once(benchmark, measure_sweep_serial_vs_pool, trace)
    assert outcome["bitwise_identical"]

    speedup = outcome["speedup"]
    n_workers = outcome["workers"]
    print(f"\nSweep scale ({len(outcome['policies'])} policies, "
          f"{outcome['n_clusters']} clusters, {trace.n_slots} slots, "
          f"{n_workers} workers):")
    print(f"  serial      {outcome['serial_seconds']:7.2f} s")
    print(f"  pool cold   {outcome['pool_cold_seconds']:7.2f} s "
          f"(spawn + imports, {outcome['cold_speedup']:.2f}x)")
    print(f"  pool warm   {outcome['pool_seconds']:7.2f} s")
    print(f"  speedup     {speedup:6.2f}x (serial vs warm)")
    assert_perf(speedup >= 1.2,
                f"expected >=1.2x warm-pool sweep speedup with {n_workers} "
                f"workers, got {speedup:.2f}x",
                relax=(os.cpu_count() or 1) < MIN_SWEEP_CPUS)


def test_chunked_replay_bounded_memory(benchmark):
    smoke = bench_smoke_enabled()
    servers, placed, n_slots = build_chunked_bench_state(smoke=smoke)
    n_active = sum(1 for server in servers if server.plans)
    dense_matrix_bytes = n_active * n_slots * 8
    chunk_budget_bytes = n_active * CHUNK_SLOTS * 8
    # The demonstration only counts if the dense matrix is genuinely >= 10x
    # the chunk budget -- otherwise chunking would be pointless here.
    assert dense_matrix_bytes >= 10 * chunk_budget_bytes

    # The harness replays dense then chunked under tracemalloc and raises
    # if the chunked ViolationStats diverge -- exactness first: the
    # streaming mode is a memory optimization, not an approximation.
    outcome = run_once(benchmark, measure_replay_memory,
                       servers, placed, n_slots, CHUNK_SLOTS)
    assert outcome["observed_server_slots"] > (50_000 if smoke else 100_000)

    dense_peak = outcome["dense_peak_bytes"]
    chunked_peak = outcome["chunked_peak_bytes"]
    print(f"\nChunked replay ({n_active} active servers, {len(placed)} VMs, "
          f"{n_slots} slots, chunk={CHUNK_SLOTS}):")
    print(f"  dense matrix {dense_matrix_bytes / 1e6:8.1f} MB/resource, "
          f"{dense_matrix_bytes / chunk_budget_bytes:.0f}x the chunk budget")
    print(f"  dense   peak {dense_peak / 1e6:8.1f} MB  "
          f"({outcome['dense_seconds'] * 1e3:6.0f} ms)")
    print(f"  chunked peak {chunked_peak / 1e6:8.1f} MB  "
          f"({outcome['chunked_seconds'] * 1e3:6.0f} ms)")
    print(f"  peak reduction {outcome['peak_reduction']:5.1f}x")
    # Peak memory is deterministic for a fixed workload (tracemalloc traces
    # every allocation), so this bound stays hard even in smoke mode; the
    # measured reduction is ~16x, asserted with 4x margin.
    assert chunked_peak * 4 <= dense_peak
    # Streaming must not cost more than ~3x dense wall-clock (it is usually
    # within 1.5x); relaxed on shared runners.
    assert_perf(outcome["chunked_seconds"] <= 3.0 * outcome["dense_seconds"],
                f"chunked replay {outcome['chunked_seconds']:.2f}s vs dense "
                f"{outcome['dense_seconds']:.2f}s exceeds the 3x streaming "
                f"overhead budget")
