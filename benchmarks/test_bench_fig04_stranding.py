"""Figure 4: stranding per resource under hypothetical oversubscription."""
from conftest import run_once
from repro.experiments.figures import figure04_stranding


def test_fig04_stranding(benchmark, bench_trace):
    rows = run_once(benchmark, figure04_stranding, bench_trace)
    print("\nFigure 4 stranding %:")
    for scenario, per_resource in rows.items():
        print(f"  {scenario:12s} " + " ".join(f"{k}={v:.1f}" for k, v in per_resource.items()))
    assert set(rows) == {"no-oversub", "cpu-only", "cpu+memory"}
