"""Figure 17: oversubscribed accesses vs prediction percentile."""
from conftest import run_once
from repro.experiments.figures import figure17_oversub_accesses


def test_fig17_percentile_tradeoff(benchmark, bench_trace):
    rows = run_once(benchmark, figure17_oversub_accesses, bench_trace,
                    percentiles=(65, 80, 95), window_hours_sweep=(1, 4, 24))
    table = rows["mean_oversub_access_pct"]
    print("\nFigure 17 mean oversubscribed-access % (window hrs x percentile):")
    for hours, row in table.items():
        print(f"  {hours:2d}h " + " ".join(f"P{p}={v:.1f}" for p, v in row.items()))
    assert table[4][95] <= table[4][65] + 1e-9
