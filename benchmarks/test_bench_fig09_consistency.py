"""Figure 9: day-over-day peak/valley consistency."""
from conftest import run_once
from repro.experiments.figures import figure09_consistency


def test_fig09_consistency(benchmark, bench_trace):
    rows = run_once(benchmark, figure09_consistency, bench_trace)
    cpu_4h = rows["cpu"][4]
    idx20 = cpu_4h["diff_threshold"].index(0.20)
    mem_4h = rows["memory"][4]
    idx5 = mem_4h["diff_threshold"].index(0.05)
    print(f"\nFigure 9: CPU diffs <=20%: {100*cpu_4h['cdf'][idx20]:.0f}% "
          f"(paper ~80%), MEM diffs <=5%: {100*mem_4h['cdf'][idx5]:.0f}% (paper ~80%)")
    assert cpu_4h["cdf"][idx20] > 0.5
