"""Figure 7: week-long VM utilization profile with window maxima."""
from conftest import run_once
from repro.experiments.figures import figure07_vm_profile


def test_fig07_vm_profile(benchmark, bench_trace):
    profile = run_once(benchmark, figure07_vm_profile, bench_trace)
    print("\nFigure 7 lifetime window maxima:", [round(float(x), 2)
          for x in profile["lifetime_window_max"]])
    assert profile["lifetime_window_max"].shape == (3,)
