"""Streaming-ingest benchmark: bounded-memory generate -> store at month scale.

The claim behind the ``TraceStoreBuilder`` (the write half of the
larger-than-RAM pipeline): streaming a generated trace straight to the
on-disk columnar layout peaks at a fraction of the eager
``generate() -> from_trace -> save`` path's memory -- >= 5x lower on the
month-scale workload -- while producing byte-identical files for any batch
size.

Workload and measurement harness are shared with
``scripts/run_benchmarks.py`` via :func:`repro.simulator.synthetic
.streaming_ingest_config` and :func:`repro.simulator.benchmarking
.measure_streaming_ingest`, so the tracked numbers cannot drift from this
benchmark.
"""

from conftest import assert_perf, bench_smoke_enabled, run_once

from repro.simulator.benchmarking import measure_streaming_ingest
from repro.simulator.synthetic import (
    streaming_ingest_batch_vms,
    streaming_ingest_config,
)


def test_bench_streaming_ingest(benchmark, tmp_path):
    """Streaming ingest peaks >= 5x below the eager from_trace path."""
    smoke = bench_smoke_enabled()
    config = streaming_ingest_config(smoke=smoke)
    outcome = run_once(benchmark, measure_streaming_ingest, config, tmp_path,
                       batch_vms=streaming_ingest_batch_vms(smoke=smoke))
    print(f"\nstreaming ingest: {outcome['n_vms']} VMs / {outcome['n_days']} "
          f"days ({outcome['store_bytes'] / 1e6:.1f} MB on disk), peak "
          f"{outcome['stream_peak_bytes'] / 1e6:.1f} MB vs eager "
          f"{outcome['eager_peak_bytes'] / 1e6:.1f} MB "
          f"({outcome['peak_reduction']:.1f}x), "
          f"{outcome['vms_per_second']:.0f} VMs/s / "
          f"{outcome['samples_per_second']:.0f} samples/s")
    # The harness hard-asserts the byte-differential and the mmap open;
    # restate the structural claims so a harness regression cannot silently
    # weaken the benchmark.
    assert outcome["bitwise_identical"]
    assert outcome["n_samples"] > 0
    # tracemalloc peaks are deterministic for a fixed workload, and the
    # memory bound is the builder's reason to exist: hard assertion.
    assert outcome["peak_reduction"] >= 5.0, (
        "streaming ingest should peak at <= 1/5 of the eager from_trace "
        f"path, got {outcome['peak_reduction']:.1f}x")
    # Wall-clock is machine-dependent: the streaming path must not cost more
    # than a modest overhead over eager generation (relaxed under smoke).
    assert_perf(
        outcome["stream_seconds"] <= 1.5 * outcome["eager_seconds"],
        "streaming ingest should cost <= 1.5x the eager path's wall-clock, "
        f"got {outcome['stream_seconds']:.2f}s vs "
        f"{outcome['eager_seconds']:.2f}s")
