"""Figure 8: peaks/valleys per 4-hour time window."""
from conftest import run_once
from repro.experiments.figures import figure08_peaks


def test_fig08_peaks_valleys(benchmark, bench_trace):
    rows = run_once(benchmark, figure08_peaks, bench_trace)
    print("\nFigure 8: VMs without CPU peaks per weekday:",
          [round(float(x), 2) for x in rows["cpu"]["none"]])
    assert rows["cpu"]["peaks"].shape == (7, 6)
