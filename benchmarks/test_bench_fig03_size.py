"""Figure 3: resource hours and VM share by VM size."""
from conftest import run_once
from repro.experiments.figures import figure03_size


def test_fig03_resource_hours_by_size(benchmark, bench_trace):
    rows = run_once(benchmark, figure03_size, bench_trace)
    idx32 = rows["memory"]["threshold"].index(32)
    print("\nFigure 3 @ >=32GB: "
          f"GB-hours {rows['memory']['resource_hours_pct'][idx32]:.1f}% "
          f"VMs {rows['memory']['vms_pct'][idx32]:.1f}%  (paper: >60% / ~20%)")
    assert rows["memory"]["resource_hours_pct"][idx32] > rows["memory"]["vms_pct"][idx32]
