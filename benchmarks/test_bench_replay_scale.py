"""Violation-replay throughput of the vectorized meter at production scale.

Replays the utilization of ~5000 placed VMs against a 200-server cluster
with the dense :class:`VectorizedViolationMeter` and compares replay time
against the seed per-server loop (:class:`ReferenceViolationMeter`).  Both
meters run on the same committed scheduler state, and the benchmark also
asserts they produce *identical* ViolationStats -- the differential test at
scale.  Timings take the best of several rounds so the asserted speedup is
robust to scheduler jitter.
"""

import time

from conftest import assert_perf, bench_smoke_enabled, run_once

from repro.simulator.replay import ReferenceViolationMeter, VectorizedViolationMeter
from repro.simulator.synthetic import (
    SCALE_BENCH_CLUSTER as SCALE_CLUSTER,
    build_replay_scale_state,
)

CPU_CONTENTION_FRACTION = 0.5


def _best_of(func, rounds):
    """Minimum wall time over *rounds* back-to-back runs (after one warmup).

    Back-to-back runs keep the meter's working set warm; the first run after
    a context switch is reliably 30-50% slower than the steady state, so the
    warmup run is discarded.
    """
    func()
    best = float("inf")
    for _ in range(rounds):
        begin = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - begin)
    return best


def test_vectorized_replay_scale_throughput(benchmark):
    # The smoke knob shrinks the workload the same way for this benchmark
    # and scripts/run_benchmarks.py, so the two stay comparable per CI run.
    smoke = bench_smoke_enabled()
    servers, placed, n_slots = build_replay_scale_state(smoke=smoke)
    assert SCALE_CLUSTER.server_count >= 200
    assert len(placed) >= (1200 if smoke else 4000)

    vectorized = VectorizedViolationMeter()
    reference = ReferenceViolationMeter()
    measure_vectorized = lambda: vectorized.measure(
        servers, placed, 0, n_slots, CPU_CONTENTION_FRACTION)
    measure_reference = lambda: reference.measure(
        servers, placed, 0, n_slots, CPU_CONTENTION_FRACTION)

    vectorized_stats = run_once(benchmark, measure_vectorized)
    reference_stats = measure_reference()
    # Differential check at scale: identical ViolationStats, not approximate.
    assert vectorized_stats == reference_stats

    # A single scheduler stall can sink either side's best-of; retry the
    # whole measurement (bounded) before declaring the speedup regressed.
    for _attempt in range(3):
        reference_seconds = _best_of(measure_reference, rounds=3)
        vectorized_seconds = _best_of(measure_vectorized, rounds=6)
        speedup = reference_seconds / vectorized_seconds
        if speedup >= 5.0:
            break
    observed = vectorized_stats.observed_server_slots
    print(f"\nReplay scale ({SCALE_CLUSTER.server_count} servers, "
          f"{len(placed)} placed VMs, {observed} observed server-slots):")
    print(f"  vectorized {observed / vectorized_seconds:12.0f} server-slots/s "
          f"({vectorized_seconds * 1e3:.1f} ms)")
    print(f"  seed loop  {observed / reference_seconds:12.0f} server-slots/s "
          f"({reference_seconds * 1e3:.1f} ms)")
    print(f"  speedup    {speedup:8.1f}x")

    # The replay must genuinely observe a filled cluster.
    assert observed > (2_000 if smoke else 10_000)
    assert_perf(speedup >= 5.0,
                f"expected >=5x replay speedup over the seed loop, "
                f"got {speedup:.1f}x")
