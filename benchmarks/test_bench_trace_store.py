"""Trace-store scale benchmarks: sweep footprint, filters, streaming replay.

Three claims, each against the object-based seed representation:

* a process-pool sweep worker receives a kilobyte-scale shared-memory
  handle instead of unpickling a private multi-megabyte trace copy (>= 5x
  smaller per worker -- measured at several hundred x);
* the columnar filters (``alive_at`` / ``arriving_in`` / ``long_running``)
  and the O(1) ``vm_by_id`` beat the seed's Python loops;
* an mmap-backed store replays end to end while staying under an in-RAM
  budget its utilization buffer exceeds (the streaming-trace ROADMAP item).

Workloads and measurement harnesses are shared with
``scripts/run_benchmarks.py`` via :mod:`repro.simulator.synthetic` and
:mod:`repro.simulator.benchmarking`, so the tracked numbers cannot drift
from these.
"""

import time

from conftest import assert_perf, bench_smoke_enabled, run_once

from repro.simulator.benchmarking import (
    measure_mmap_bounded_replay,
    measure_sweep_task_footprint,
)
from repro.simulator.synthetic import (
    generate_multiweek_trace,
    generate_store_bench_trace,
)
from repro.trace.store import TraceStore


def _time(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        begin = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - begin)
    return best


def test_bench_sweep_worker_footprint(benchmark):
    """Shared-memory sweep tasks are >= 5x smaller than pickled-trace tasks."""
    trace = generate_store_bench_trace(smoke=bench_smoke_enabled())
    outcome = run_once(benchmark, measure_sweep_task_footprint, trace)
    print(f"\nsweep task: pickled {outcome['pickled_task_bytes'] / 1e6:.1f} MB"
          f" vs shared {outcome['shared_task_bytes'] / 1e3:.1f} KB"
          f" ({outcome['footprint_reduction']:.0f}x);"
          f" unpickle {outcome['unpickle_seconds'] * 1e3:.1f} ms"
          f" vs attach {outcome['attach_seconds'] * 1e3:.1f} ms")
    # Byte counts are deterministic for a fixed workload: hard assertion.
    assert outcome["footprint_reduction"] >= 5.0, (
        "shared-memory sweep tasks should be at least 5x smaller than "
        f"pickled-trace tasks, got {outcome['footprint_reduction']:.1f}x")
    # Wall-clock ratio is machine-dependent: relaxed under smoke.
    assert_perf(
        outcome["attach_seconds"] * 2 <= outcome["unpickle_seconds"],
        "attaching the shared store should be >= 2x faster than unpickling "
        f"the trace (attach {outcome['attach_seconds'] * 1e3:.1f} ms, "
        f"unpickle {outcome['unpickle_seconds'] * 1e3:.1f} ms)")


def test_bench_columnar_filters(benchmark):
    """Column predicates beat the seed's per-VM Python loops.

    Filter cost scales with the VM count, not the telemetry volume, so this
    benchmark uses a VM-dense trace (many short-lived VMs) rather than the
    telemetry-dense store workload.
    """
    smoke = bench_smoke_enabled()
    trace = generate_multiweek_trace(n_days=14, n_vms=2000 if smoke else 4000,
                                     n_subscriptions=80, servers_per_cluster=3)
    store_trace = TraceStore.from_trace(trace).as_trace()
    mid = trace.n_slots // 2

    def filters_obj():
        trace.alive_at(mid)
        trace.arriving_in(mid // 2, mid)
        trace.long_running()

    def filters_store():
        store_trace.alive_at(mid)
        store_trace.arriving_in(mid // 2, mid)
        store_trace.long_running()

    # Correctness before speed: both paths select the same VMs.
    assert ([vm.vm_id for vm in store_trace.alive_at(mid)]
            == [vm.vm_id for vm in trace.alive_at(mid)])
    assert ([vm.vm_id for vm in store_trace.long_running().vms]
            == [vm.vm_id for vm in trace.long_running().vms])

    object_seconds = _time(filters_obj)
    store_seconds = run_once(benchmark, lambda: _time(filters_store))
    speedup = object_seconds / max(store_seconds, 1e-9)

    lookup_id = trace.vms[len(trace.vms) // 2].vm_id
    linear_seconds = _time(
        lambda: next(vm for vm in trace.vms if vm.vm_id == lookup_id), repeats=20)
    indexed_seconds = _time(lambda: store_trace.vm_by_id(lookup_id), repeats=20)
    lookup_speedup = linear_seconds / max(indexed_seconds, 1e-9)

    print(f"\nfilters: object {object_seconds * 1e3:.2f} ms vs columnar "
          f"{store_seconds * 1e3:.2f} ms ({speedup:.1f}x); vm_by_id linear "
          f"{linear_seconds * 1e6:.1f} us vs indexed {indexed_seconds * 1e6:.2f} us "
          f"({lookup_speedup:.0f}x)")
    assert_perf(speedup >= 2.0,
                f"columnar filters should be >= 2x the object loops, got "
                f"{speedup:.2f}x")
    assert_perf(lookup_speedup >= 5.0,
                f"indexed vm_by_id should be >= 5x a linear scan, got "
                f"{lookup_speedup:.2f}x")


def test_bench_mmap_bounded_replay(benchmark, tmp_path):
    """A trace bigger than the RAM budget replays from disk within budget."""
    trace = generate_store_bench_trace(smoke=bench_smoke_enabled())
    outcome = run_once(benchmark, measure_mmap_bounded_replay, trace, tmp_path)
    print(f"\nmmap replay: buffer {outcome['buffer_nbytes'] / 1e6:.1f} MB, "
          f"budget {outcome['budget_bytes'] / 1e6:.1f} MB, streaming peak "
          f"{outcome['mmap_peak_bytes'] / 1e6:.1f} MB vs in-RAM peak "
          f"{outcome['dense_peak_bytes'] / 1e6:.1f} MB "
          f"({outcome['peak_reduction']:.1f}x)")
    # The harness already hard-asserts bitwise equality and the budget bound;
    # restate the structural claims here so a harness regression cannot
    # silently weaken the benchmark.
    assert outcome["bitwise_identical"]
    assert outcome["buffer_nbytes"] > outcome["budget_bytes"], (
        "the workload must not fit the in-RAM budget, or the benchmark "
        "demonstrates nothing")
    assert outcome["mmap_peak_bytes"] < outcome["budget_bytes"]
    assert_perf(outcome["peak_reduction"] >= 3.0,
                "streaming replay should peak at <= 1/3 of the in-RAM "
                f"replay, got {outcome['peak_reduction']:.1f}x")
